The reorderability matrix of section 4:

  $ drfopt matrix
  distinct locations (x <> y):
     a \ b     W     R   Acq   Rel   Ext     U
         W   yes   yes   yes     x   yes     x
         R   yes   yes   yes     x   yes     x
       Acq     x     x     x     x     x     x
       Rel   yes   yes     x     x     x     x
       Ext   yes   yes     x     x     x     x
         U     x     x     x     x     x     x
  same location (x = y):
     a \ b     W     R   Acq   Rel   Ext     U
         W     x     x   yes     x   yes     x
         R     x   yes   yes     x   yes     x
       Acq     x     x     x     x     x     x
       Rel   yes   yes     x     x     x     x
       Ext   yes   yes     x     x     x     x
         U     x     x     x     x     x     x

Definition 1 on the paper's worked trace:

  $ drfopt eliminable "S(0); W[x=1]; R[y=*]; R[x=1]; X(1); L[m]; W[x=2]; W[x=1]; U[m]"
  [S(0); W[x=1]; R[y=*]; R[x=1]; X(1); L[m]; W[x=2]; W[x=1]; U[m]]
     0 S(0)       -
     1 W[x=1]     -
     2 R[y=*]     eliminable: irrelevant read
     3 R[x=1]     eliminable: redundant read after write 1
     4 X(1)       -
     5 L[m]       -
     6 W[x=2]     eliminable: write overwritten by 7
     7 W[x=1]     -
     8 U[m]       eliminable: redundant release  (not composable: last-action clause)

Running a program:

  $ cat > mp.lit <<'PROG'
  > volatile flag;
  > thread { data := 1; flag := 1; }
  > thread { r1 := flag; if (r1 == 1) { r2 := data; print r2; } }
  > PROG

  $ drfopt run mp.lit | tail -3
  behaviours (2, showing maximal):
  print 1
  data race free: true

  $ drfopt drf mp.lit
  data race free

Bounded denotation:

  $ cat > relay.lit <<'PROG'
  > thread { r1 := x; y := r1; }
  > PROG

  $ drfopt denote relay.lit
  value universe: [0, 1, 2]
  traces (length <= 8): 8; maximal:
    [S(0); R[x=0]; W[y=0]]
    [S(0); R[x=1]; W[y=1]]
    [S(0); R[x=2]; W[y=2]]

A rule application:

  $ cat > rar.lit <<'PROG'
  > thread { r1 := x; r2 := x; print r2; }
  > PROG

  $ drfopt transform rar.lit --rule E-RAR
  thread {
    r1 := x;
    r2 := r1;
    print r2;
  }

A single litmus test:

  $ drfopt litmus sb
  sb                 ok

The lock-free pack, selected by name substring:

  $ drfopt litmus --filter atomic
  atomic_faa_counter ok
  atomic_ticket_lock ok
  atomic_treiber     ok
  atomic_sense_barrier ok
  atomic_spin_then_block ok
  atomic_sb_xchg     ok

  $ drfopt litmus --filter nosuch
  no litmus test name contains "nosuch"
  [2]

Atomic read-modify-writes: cas/faa/xchg are one-step actions, so two
unsynchronised faa increments are data race free and each thread gets
a distinct ticket:

  $ cat > faa.lit <<'PROG'
  > thread { r1 := faa(c, 1); print r1; }
  > thread { r2 := faa(c, 1); print r2; }
  > PROG

  $ drfopt run faa.lit | tail -4
  behaviours (5, showing maximal):
  print 0; print 1
  print 1; print 0
  data race free: true

In trace notation an RMW is U[l:r->w] (printed with an arrow), and it
is never eliminable — it acquires and releases in one action:

  $ drfopt eliminable "S(0); W[x=1]; U[x:1->2]; R[x=2]; W[x=3]"
  [S(0); W[x=1]; U[x:1→2]; R[x=2]; W[x=3]]
     0 S(0)       -
     1 W[x=1]     -
     2 U[x:1→2] -
     3 R[x=2]     -
     4 W[x=3]     eliminable: redundant last write  (not composable: last-action clause)

The refine rung cannot bound a thread that performs atomic updates
(the written values escape the literal-derived universe), so the auto
ladder escalates to the exhaustive rung instead of guessing:

  $ cat > rmw_rar.lit <<'PROG'
  > thread { r1 := faa(c, 1); r2 := x; r3 := x; print r1; }
  > PROG
  $ drfopt transform rmw_rar.lit --rule E-RAR > rmw_rar_opt.lit
  $ drfopt validate rmw_rar.lit rmw_rar_opt.lit --validator refine
  validator: refine; decided by: inconclusive; verdict: UNDECIDED
  note: thread 0: thread performs atomic updates; universe not update-closed
  thread 0: inconclusive (thread performs atomic updates; universe not update-closed)
  DRF guarantee: UNDECIDED
  [1]
  $ drfopt validate rmw_rar.lit rmw_rar_opt.lit --validator auto
  validator: auto; decided by: exhaustive; verdict: ok
  note: thread 0: thread performs atomic updates; universe not update-closed; escalated to exhaustive enumeration
  thread 0: inconclusive (thread performs atomic updates; universe not update-closed)
  model: sc
  original DRF: true
  transformed DRF: true
  new behaviour: none
  relation (unchecked): n/a
  DRF guarantee: HOLDS

Deadlock detection:

  $ cat > dl.lit <<'PROG'
  > thread { lock m; lock n; unlock n; unlock m; }
  > thread { lock n; lock m; unlock m; unlock n; }
  > PROG

  $ drfopt deadlock dl.lit
  DEADLOCK after:
  [(0,S(0)); (0,L[m]); (1,S(1)); (1,L[n])]
  [1]

Fence inference on store buffering:

  $ cat > sb.lit <<'PROG'
  > thread { x := 1; r1 := y; print r1; }
  > thread { y := 1; r2 := x; print r2; }
  > PROG

  $ drfopt robust sb.lit | head -2
  promoted to volatile: y, x
  --- robust program ---

Static DRF certification: the lock-protected counter from examples/ is
certified without enumerating a single interleaving,

  $ drfopt analyze ../../examples/locked_counter.lit
  may-access summary:
    thread 0 reads {c} writes {c}
    thread 1 reads {c} writes {c}
  per-access locksets:
    thread 0 site 0: read c held {m}
    thread 0 site 1: write c held {m}
    thread 1 site 0: read c held {m}
    thread 1 site 1: write c held {m}
  verdict: DRF (certified statically, no enumeration)

while dropping the lock in one thread yields concrete access pairs with
source windows:

  $ drfopt analyze ../../examples/racy_counter.lit
  may-access summary:
    thread 0 reads {c} writes {c}
    thread 1 reads {c} writes {c}
  per-access locksets:
    thread 0 site 0: read c held {}
    thread 0 site 1: write c held {}
    thread 1 site 0: read c held {m}
    thread 1 site 1: write c held {m}
  potential races (3):
  race on c:
    a) thread 0 site 0 (read, held {}):
        >   r1 := c;
        |   c := r1;
    b) thread 1 site 1 (write, held {m}):
        |   lock m;
        |   r2 := c;
        >   c := r2;
        |   unlock m;
  
  race on c:
    a) thread 0 site 1 (write, held {}):
        |   r1 := c;
        >   c := r1;
    b) thread 1 site 0 (read, held {m}):
        |   lock m;
        >   r2 := c;
        |   c := r2;
        |   unlock m;
  
  race on c:
    a) thread 0 site 1 (write, held {}):
        |   r1 := c;
        >   c := r1;
    b) thread 1 site 1 (write, held {m}):
        |   lock m;
        |   r2 := c;
        >   c := r2;
        |   unlock m;
  
  verdict: POTENTIAL RACES (needs exhaustive enumeration)
  [1]

Exploration statistics (--stats is additive; wall time varies between
runs, so only the deterministic line is shown):

  $ drfopt run mp.lit --stats | grep 'exploration:'
  exploration: 30 states, 38 transitions

With --stats, analyze settles statically-unresolved potential races by
running the exhaustive enumeration:

  $ drfopt analyze ../../examples/racy_counter.lit --stats | grep 'verdict:'
  verdict: RACY (exhaustive enumeration); witness:

The exit code is the CI gate: 0 on a static DRF certificate, nonzero on
potential races, so `drfopt analyze` can guard a pipeline directly:

  $ drfopt analyze ../../examples/locked_counter.lit > /dev/null && echo certified
  certified
  $ drfopt analyze ../../examples/racy_counter.lit > /dev/null || echo "gate closed: $?"
  gate closed: 1

The pass manager: a pipeline spec of first-class passes with per-pass
provenance sites and differential validation after every pass
(validation wall time varies between runs, so it is masked).  The
bracketed tag on each verdict is the validator rung that decided it:
under the default auto ladder these single-thread rewrites are decided
by the thread-local refinement analysis — per-thread traceset
witnesses, zero interleavings explored (states 0):

  $ cat > dse.lit <<'PROG'
  > thread {
  >   r1 := 1;
  >   if (r1 == 1) { x := r1; } else { x := r1; }
  >   x := r1;
  > }
  > PROG

  $ drfopt optimize dse.lit --pipeline "constprop;cse*;dse;normalise" --validate-each --trace-passes | sed -E 's/[0-9]+\.[0-9]+ ms/_ ms/'
  pass constprop: 1 site in 1 iteration
    constprop @ thread 0: if (r1 == 1) { x := r1; } else { x := r1; } ~> if (1 == 1) { x := r1; } else { x := r1; }
    validation: ok [refine] (states 0, _ ms)
  pass redundancy: 0 sites in 1 iteration
    validation: skipped
  pass dead-stores: 2 sites in 1 iteration
    E-WBW/cfg @ 1.0.0 @ thread 0: x := r1; ~> skip;
    E-WBW/cfg @ 1.1.0 @ thread 0: x := r1; ~> skip;
    validation: ok [refine] (states 0, _ ms)
  pass normalise: 1 site in 1 iteration
    normalise @ thread 0: if (1 == 1) { skip; } else { skip; } ~> if (1 == 1) skip; else skip;
    validation: ok [refine] (states 0, _ ms)
  pipeline ok: 4 passes run
  --- optimised ---
  thread {
    r1 := 1;
    if (1 == 1)
      skip;
    else
      skip;
    x := r1;
  }
  4 rewrite sites across 4 passes

The differential validator catches a deliberately unsound pass — a
store reordered past the lock release that published it — with a
concrete counterexample witness (the program pair and a racy
interleaving of the transformed program):

  $ cat > locked.lit <<'PROG'
  > thread {
  >   lock m;
  >   r0 := 1;
  >   data := r0;
  >   unlock m;
  > }
  > thread {
  >   lock m;
  >   r1 := data;
  >   unlock m;
  >   print r1;
  > }
  > PROG

  $ drfopt optimize locked.lit --pipeline "unsafe-store-release" --validate-each --trace-passes | sed -E 's/[0-9]+\.[0-9]+ ms/_ ms/'
  pass unsafe-store-release: 2 sites in 1 iteration
    unsafe-store-release @ thread 0: data := r0; ~> unlock m;
    unsafe-store-release @ thread 0: unlock m; ~> data := r0;
    validation: FAILED [exhaustive] (states 71, _ ms)
  pipeline REJECTED at pass unsafe-store-release:
  original:
    thread {
    lock m;
    r0 := 1;
    data := r0;
    unlock m;
  }
  thread {
    lock m;
    r1 := data;
    unlock m;
    print r1;
  }
  transformed:
    thread {
    lock m;
    r0 := 1;
    unlock m;
    data := r0;
  }
  thread {
    lock m;
    r1 := data;
    unlock m;
    print r1;
  }
  race introduced (original is DRF; last two actions conflict):
    [(0,S(0)); (0,L[m]); (0,U[m]); (1,S(1)); (1,L[m]); (0,W[data=1]);
     (1,R[data=1])]
  --- optimised ---
  thread {
    lock m;
    r0 := 1;
    data := r0;
    unlock m;
  }
  thread {
    lock m;
    r1 := data;
    unlock m;
    print r1;
  }
  2 rewrite sites across 1 pass
  REJECTED at pass unsafe-store-release

The validator ladder, standalone: --validator picks how a program pair
is decided.  The refine rung matches per-thread tracesets against the
original's via elimination/reordering witnesses — no scheduler, no
interleavings — and reports how many transformed traces it witnessed:

  $ cat > rr.lit <<'PROG'
  > thread {
  >   r1 := x0;
  >   r2 := x0;
  >   print r2;
  > }
  > PROG
  $ drfopt transform rr.lit --rule E-RAR > rr_opt.lit
  $ drfopt validate rr.lit rr_opt.lit --validator refine
  validator: refine; decided by: refine; verdict: ok
  thread 0: refines (8 traces witnessed)
  DRF guarantee: HOLDS

Forcing the static rung on distinct programs is inconclusive (exit 1):
syntactic equality is all it can decide, and behaviour inclusion is
undecidable statically,

  $ drfopt validate rr.lit rr_opt.lit --validator static
  validator: static; decided by: inconclusive; verdict: UNDECIDED
  note: programs differ: the static rung cannot relate distinct programs (use refine, exhaustive or auto)
  DRF guarantee: UNDECIDED
  [1]

while identical programs are decided there, whatever the mode:

  $ drfopt validate rr.lit rr.lit --validator refine
  validator: refine; decided by: static; verdict: ok
  note: programs syntactically equal
  DRF guarantee: HOLDS

Structured tracing: a traced pipeline run, its offline report and the
Chrome export.  Timings are redacted; the counter totals, span counts
and per-pass verdicts are deterministic (the wall_s and states_per_s
rate metrics are not, so they are filtered out).  The exhaustive rung
is forced so the report shows the exploration counters:

  $ cat > seqopt.lit <<'PROG'
  > thread {
  >   x := 1;
  >   r1 := x;
  >   r2 := x;
  >   x := 2;
  >   x := 3;
  >   print r1;
  > }
  > PROG

  $ drfopt optimize seqopt.lit --pipeline 'cse;dse' --validate-each --validator exhaustive --trace-out t.jsonl
  --- optimised ---
  thread {
    rt0 := 1;
    skip;
    r1 := rt0;
    r2 := r1;
    rt1 := 2;
    skip;
    rt2 := 3;
    x := rt2;
    print r1;
  }
  4 rewrite sites across 2 passes

  $ drfopt report t.jsonl | sed -E 's/[0-9]+\.[0-9]{3}ms/_ms/g' | grep -vE 'wall_s|states_per_s'
  trace: 34 events, 9 spans (9 closed), wall _ms
  
  phases:
    phase                        count        total         self         mean
    pipeline                         1      _ms      _ms      _ms
    pass                             2      _ms      _ms      _ms
    validate                         2      _ms      _ms      _ms
    explorer.behaviours              4      _ms      _ms      _ms
  
  passes:
    pass         iters sites  verdict   validation         wall
    redundancy       1     2       ok      _ms      _ms
    dead-stores      1     2       ok      _ms      _ms
  
  counters:
    validate.outcomes            2
    validate.model.sc            2
    validate.exhaustive_runs     2
    explorer.states              24
    explorer.edges               20
    explorer.memo_hits           0
    explorer.por_cuts            0
    explorer.steals              0
    explorer.lock_waits          0
    explorer.peak_frontier       6
    explorer.domains             0
    pipeline.passes              2
    pipeline.rewrite_sites       4
    pipeline.validations         2
  

The Chrome trace_event export is one JSON object Perfetto can load:

  $ drfopt run seqopt.lit --trace-out c.json --trace-format chrome > /dev/null
  $ grep -c traceEvents c.json
  1

The report rendering, pinned exactly on a committed trace with fixed
timestamps:

  $ drfopt report trace_small.jsonl
  trace: 10 events, 4 spans (4 closed), wall 1.700ms
  
  phases:
    phase                        count        total         self         mean
    pipeline                         1      1.590ms      0.210ms      1.590ms
    pass                             2      1.380ms      0.580ms      0.690ms
    validate                         1      0.800ms      0.800ms      0.800ms
  
  passes:
    pass         iters sites  verdict   validation         wall
    cse              1     2       ok      0.800ms      0.880ms
    dse              1     1       ok      0.300ms      0.500ms
  
  counters:
    explorer.states              36
    pipeline.passes              2
  

The span profile on the same committed trace: per-name self vs. total
time, hottest first, name as tie-break — the ordering and every figure
are deterministic on fixed timestamps:

  $ drfopt report trace_small.jsonl --profile --top 3 | sed -n '/hot spans/,$p'
  hot spans (top 3 by self time):
    span                         count         self        total  self%
    validate                         1      0.800ms      0.800ms  50.3%
    pass                             2      0.580ms      1.380ms  36.5%
    pipeline                         1      0.210ms      1.590ms  13.2%

The collapsed-stack view is the folded format flamegraph.pl and
speedscope consume directly: one "root;child;leaf <self µs>" line per
distinct stack, sorted lexicographically:

  $ drfopt report trace_small.jsonl --flamegraph
  pipeline 210
  pipeline;pass 580
  pipeline;pass;validate 800

The heartbeat sampler: --heartbeat MS appends versioned JSONL
snapshots of live progress while a command runs; the final line is
written at stop and equals the end-of-run metrics registry, so its
cumulative counters are deterministic:

  $ drfopt run seqopt.lit --heartbeat 50 --heartbeat-out hb.jsonl > /dev/null
  $ tail -1 hb.jsonl | grep -oE '"schema":"[^"]*"|"states":[0-9]+|"edges":[0-9]+' | head -3
  "schema":"heartbeat/v1"
  "states":16
  "edges":14

--stats is additive on optimize too (forcing the exhaustive rung so
the counters are nonzero; they equal the trace counters above):

  $ drfopt optimize seqopt.lit --pipeline 'cse;dse' --validate-each --validator exhaustive --stats | grep 'exploration:'
  exploration: 24 states, 20 transitions

bench diff: the noise-aware comparison of two BENCH_*.json files.
Rates compare relatively (higher is better) with a wall-clock noise
floor; boolean claims must not flip true -> false; the exit code is
the CI gate:

  $ cat > bd_old.json <<'EOF'
  > {
  >   "schema": "bench_test/v1",
  >   "experiments": [
  >     { "name": "count_states", "wall_s": 1.2, "units_per_sec": 50000.0 },
  >     { "name": "behaviours", "wall_s": 0.9, "units_per_sec": 8000.0 },
  >     { "name": "tiny", "wall_s": 0.002, "units_per_sec": 100.0 }
  >   ],
  >   "por_identical": true
  > }
  > EOF
  $ cat > bd_new.json <<'EOF'
  > {
  >   "schema": "bench_test/v1",
  >   "experiments": [
  >     { "name": "count_states", "wall_s": 1.1, "units_per_sec": 54000.0 },
  >     { "name": "behaviours", "wall_s": 2.1, "units_per_sec": 3400.0 },
  >     { "name": "tiny", "wall_s": 0.002, "units_per_sec": 40.0 }
  >   ],
  >   "por_identical": true
  > }
  > EOF

A run against itself is clean (the sub-floor point is skipped, not
compared):

  $ drfopt bench diff bd_old.json bd_old.json
    metric                                                old          new  verdict
    experiments[count_states].units_per_sec             50000        50000  ok
    experiments[behaviours].units_per_sec                8000         8000  ok
    experiments[tiny].units_per_sec                       100          100  skipped (noise floor)
    por_identical                                           1            1  ok
  3 compared, 0 regressions

The degraded run regresses — the rate drop beyond the 25% threshold is
flagged and the exit code is nonzero, while the sub-floor noise point
stays skipped and the small improvement stays ok:

  $ drfopt bench diff bd_old.json bd_new.json
    metric                                                old          new  verdict
    experiments[count_states].units_per_sec             50000        54000  ok
    experiments[behaviours].units_per_sec                8000         3400  REGRESSED 57%
    experiments[tiny].units_per_sec                       100           40  skipped (noise floor)
    por_identical                                           1            1  ok
  3 compared, 1 regression
  [1]

Memory-model-parametric validation.  The --model flag on run, litmus,
validate and optimize selects the machine whose behaviours are
enumerated; sc stays the default.  The sb litmus test under TSO
surfaces the store-buffer relaxation as a failure of its SC
expectations:

  $ drfopt litmus sb --model tso
  memory model: tso (expectations are SC expectations; failures below are the model's relaxations)
  sb                 FAILED
  forbidden behaviour [0; 0] is observable
  [1]

An unknown model is rejected up front:

  $ drfopt run seqopt.lit --model arm
  drfopt: option '--model': unknown memory model "arm" (expected sc, tso or
          pso)
  Usage: drfopt run [OPTION]… FILE
  Try 'drfopt run --help' or 'drfopt --help' for more information.
  [124]

The flagship portability asymmetry: hoisting a store above an
unrelated preceding load (Fig. 11 R-RW) is safe under SC by Theorem 4,
but under TSO the hoisted store can be buffered and the pair observed
out of order, manufacturing the load-buffering outcome r1 = r2 = 1:

  $ cat > lb.lit <<'PROG'
  > thread {
  >   r1 := y;
  >   x := 1;
  >   print r1;
  > }
  > thread {
  >   r2 := x;
  >   y := 1;
  >   print r2;
  > }
  > PROG

  $ drfopt optimize lb.lit --pipeline "store-load-reorder" --validate-each > /dev/null 2>&1 && echo SC-ACCEPTED
  SC-ACCEPTED

  $ drfopt optimize lb.lit --pipeline "store-load-reorder" --validate-each --model tso
  --- optimised ---
  thread {
    r1 := y;
    rt0 := 1;
    x := rt0;
    print r1;
  }
  thread {
    r2 := x;
    rt0 := 1;
    y := rt0;
    print r2;
  }
  6 rewrite sites across 1 pass
  REJECTED at pass store-load-reorder:
  original:
    thread {
    r1 := y;
    rt0 := 1;
    x := rt0;
    print r1;
  }
  thread {
    r2 := x;
    rt0 := 1;
    y := rt0;
    print r2;
  }
  transformed:
    thread {
    rt0 := 1;
    x := rt0;
    r1 := y;
    print r1;
  }
  thread {
    rt0 := 1;
    y := rt0;
    r2 := x;
    print r2;
  }
  new behaviour (not producible by the original):
    [1; 1]
  (under the tso memory model)
  [1]

The portability matrix sweeps every registered pass over the litmus
corpus under each model.  Cells are corpus-relative: safe means no
corpus counterexample, inert means the pass never fired, UNSAFE names
the first failing test.  Note the asymmetries in both directions:
dead-stores, store-load-reorder and cross-acquire-elim are SC-safe but
TSO-unsafe, while read-intro (which breaks DRF, fatal under SC's
catch-fire semantics) is harmless under plain TSO/PSO inclusion:

  $ drfopt portability --no-witnesses
  pass                  sc                         tso                        pso                      
  constprop             inert                      inert                      inert                    
  copyprop              safe                       safe                       safe                     
  redundancy            safe                       safe                       safe                     
  dead-moves            inert                      inert                      inert                    
  dead-loads            safe                       safe                       safe                     
  dead-stores           safe                       UNSAFE(fig1_original)      safe                     
  fold-branches         inert                      inert                      inert                    
  normalise             inert                      inert                      inert                    
  unroll1               safe                       safe                       safe                     
  unroll2               safe                       safe                       safe                     
  roach-motel           safe                       safe                       safe                     
  store-load-reorder    safe                       UNSAFE(fig2_original)      UNSAFE(fig2_original)    
  cross-acquire-elim    safe                       UNSAFE(fig3_b)             UNSAFE(fig3_b)           
  read-intro            UNSAFE(fig3_a)             safe                       safe                     
  unsafe-store-release  UNSAFE(mp_locked)          safe                       safe                     

A single cell with its replayed counterexample — the store-buffer
machine re-enumerates the witness behaviour from scratch, so the
matrix never reports a counterexample the machine cannot reproduce:

  $ drfopt portability --pass store-load-reorder
  pass                sc                         tso                        pso                      
  store-load-reorder  safe                       UNSAFE(fig2_original)      UNSAFE(fig2_original)    
  
  store-load-reorder under tso: unsafe on litmus test fig2_original
    new behaviour [1] (replayed from scratch: true)
    original:
      thread {
        r2 := y;
        rt0 := 1;
        x := rt0;
        print r2;
      }
      thread {
        r1 := x;
        y := r1;
      }
    transformed:
      thread {
        rt0 := 1;
        x := rt0;
        r2 := y;
        print r2;
      }
      thread {
        r1 := x;
        y := r1;
      }
    new behaviour (not producible by the original):
      [1]
    (under the tso memory model)
  
  store-load-reorder under pso: unsafe on litmus test fig2_original
    new behaviour [1] (replayed from scratch: true)
    original:
      thread {
        r2 := y;
        rt0 := 1;
        x := rt0;
        print r2;
      }
      thread {
        r1 := x;
        y := r1;
      }
    transformed:
      thread {
        rt0 := 1;
        x := rt0;
        r2 := y;
        print r2;
      }
      thread {
        r1 := x;
        y := r1;
      }
    new behaviour (not producible by the original):
      [1]
    (under the pso memory model)
