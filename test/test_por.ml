open Safeopt_exec
open Safeopt_lang
open Safeopt_litmus
open Helpers

let check_b = Alcotest.(check bool)

(* A program with plenty of thread-local work around the shared
   accesses: POR should prune, behaviours must not change. *)
let heavy =
  parse
    "thread { a1 := 1; a1 := 2; a2 := 1; shared := r1; a3 := 1; }\n\
     thread { b1 := 1; b2 := 1; r2 := shared; b3 := 1; print r2; }"

let test_equivalence () =
  Alcotest.check behaviour_set "same behaviours with and without POR"
    (Interp.behaviours heavy)
    (Interp.behaviours ~por:true heavy);
  List.iter
    (fun t ->
      let p = Litmus.program t in
      if not
           (Behaviour.Set.equal (Interp.behaviours p)
              (Interp.behaviours ~por:true p))
      then Alcotest.failf "%s: POR changed behaviours" t.Litmus.name)
    Corpus.all

let test_reduction () =
  let full = Interp.count_states heavy in
  let reduced = Interp.count_states ~por:true heavy in
  check_b
    (Printf.sprintf "POR explores fewer states (%d < %d)" reduced full)
    true (reduced < full)

let test_local_predicate () =
  let local = Thread_system.local_actions heavy in
  check_b "private location is local" true (local (w "a1" 1));
  check_b "shared location is not" false (local (w "shared" 1));
  check_b "shared read is not" false (local (r "shared" 0));
  check_b "external is not local" false (local (ext 1));
  check_b "lock is not local" false (local (lk "m"))

let test_same_location_rmws_dependent () =
  (* regression: Action.conflicting excuses the rmw-rmw pair (atomicity
     orders them, so they never race), but the explorer must still treat
     same-location RMWs as dependent — their order decides which faa
     ticket each thread gets.  If POR wrongly commuted them, one of the
     two print orders would disappear from the reduced exploration. *)
  let p = Litmus.program Corpus.atomic_faa_counter in
  let full = Interp.behaviours p in
  let reduced = Interp.behaviours ~por:true p in
  Alcotest.check behaviour_set "reduced = full on the faa counter" full
    reduced;
  check_b "both ticket orders survive POR" true
    (Behaviour.Set.mem [ 0; 1 ] reduced && Behaviour.Set.mem [ 1; 0 ] reduced)

let test_all_shared () =
  (* when every location is shared, only the start actions (which
     always commute) are reduced; behaviours are untouched *)
  let sb = Litmus.program Corpus.sb in
  check_b "still some reduction from starts" true
    (Interp.count_states ~por:true sb <= Interp.count_states sb);
  Alcotest.check behaviour_set "behaviours identical"
    (Interp.behaviours sb)
    (Interp.behaviours ~por:true sb)

let () =
  Alcotest.run "por"
    [
      ( "partial-order reduction",
        [
          Alcotest.test_case "behaviour equivalence" `Slow test_equivalence;
          Alcotest.test_case "state reduction" `Quick test_reduction;
          Alcotest.test_case "local predicate" `Quick test_local_predicate;
          Alcotest.test_case "same-location RMWs stay dependent" `Quick
            test_same_location_rmws_dependent;
          Alcotest.test_case "all-shared case" `Quick test_all_shared;
        ] );
    ]
