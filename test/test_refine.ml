(* The thread-local refinement analysis (Refine) and the validator
   ladder built on it: unit coverage of the per-thread verdicts and the
   structural preconditions, then the differential property against the
   exhaustive oracle — a Safe verdict must imply the exhaustive one,
   counterexamples must replay as real transformed-thread traces, and
   the auto ladder must agree with pure exhaustive enumeration, both
   sequentially and on a 2-domain pool. *)

open Safeopt_trace
open Safeopt_lang
open Safeopt_exec
open Safeopt_gen
open Helpers
module Refine = Safeopt_analysis.Refine
module Validate = Safeopt_opt.Validate
module Pipeline = Safeopt_opt.Pipeline
module Pass = Safeopt_opt.Pass

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

(* --- unit: per-thread verdicts ----------------------------------------- *)

let rr2 =
  parse
    "thread { r1 := x0; r2 := x0; print r2; }\n\
     thread { r1 := x1; r2 := x1; print r2; }"

(* rr2 after cse: the second (redundant) read of each private location
   becomes a register move — E-RAR, once per thread *)
let rr2_cse =
  parse
    "thread { r1 := x0; r2 := r1; print r2; }\n\
     thread { r1 := x1; r2 := r1; print r2; }"

let test_identical_threads () =
  let r = Refine.check ~original:rr2 ~transformed:rr2 () in
  check_b "safe" true (Refine.verdict r = Refine.Safe);
  check_b "no precondition blocked" true (r.Refine.blocked = None);
  check_b "every thread Identical without enumeration" true
    (List.for_all (fun (_, v) -> v = Refine.Identical) r.Refine.threads)

let test_rar_refines_per_thread () =
  let r = Refine.check ~original:rr2 ~transformed:rr2_cse () in
  check_b "safe" true (Refine.verdict r = Refine.Safe);
  check_i "two threads analysed" 2 (List.length r.Refine.threads);
  check_b "both threads refine with witnessed traces" true
    (List.for_all
       (fun (_, v) ->
         match v with Refine.Refines { traces } -> traces > 0 | _ -> false)
       r.Refine.threads)

let test_untouched_thread_is_identical () =
  (* rewrite only thread 1: thread 0 must stay on the Identical fast
     path while thread 1 needs the traceset search *)
  let mixed =
    parse
      "thread { r1 := x0; r2 := x0; print r2; }\n\
       thread { r1 := x1; r2 := r1; print r2; }"
  in
  let r = Refine.check ~original:rr2 ~transformed:mixed () in
  check_b "safe" true (Refine.verdict r = Refine.Safe);
  check_b "thread 0 identical" true
    (List.assoc 0 r.Refine.threads = Refine.Identical);
  check_b "thread 1 refines" true
    (match List.assoc 1 r.Refine.threads with
    | Refine.Refines _ -> true
    | _ -> false)

let test_thread_count_blocked () =
  let one = parse "thread { x := r1; }" in
  let two = parse "thread { x := r1; }\nthread { y := r2; }" in
  let r = Refine.check ~original:one ~transformed:two () in
  check_b "blocked" true (Option.is_some r.Refine.blocked);
  check_b "unknown verdict" true
    (match Refine.verdict r with Refine.Unknown _ -> true | _ -> false)

let test_volatile_change_blocked () =
  let plain = parse "thread { v := r1; }" in
  let vol = parse "volatile v;\nthread { v := r1; }" in
  let r = Refine.check ~original:plain ~transformed:vol () in
  check_b "blocked" true (Option.is_some r.Refine.blocked);
  check_b "unknown verdict" true
    (match Refine.verdict r with Refine.Unknown _ -> true | _ -> false)

let test_counterexample_replays () =
  (* the transformed thread prints 1 where the original can only print
     its (zero-initialised) register: no elimination/reordering witness
     exists, and the counterexample must be a real transformed trace *)
  let original = parse "thread { print r1; }" in
  let transformed = parse "thread { r1 := 1; print r1; }" in
  let r = Refine.check ~original ~transformed () in
  match Refine.verdict r with
  | Refine.Counterexample (tid, t) ->
      check_i "counterexample on thread 0" 0 tid;
      let universe = Denote.joint_universe [ original; transformed ] in
      let ts, complete =
        Denote.thread_traces ~universe ~max_len:r.Refine.max_len ~tid
          (List.nth transformed.Ast.threads tid)
      in
      check_b "transformed enumeration complete" true complete;
      check_b "counterexample is a transformed thread trace" true
        (Traceset.mem t ts);
      (match Refine.witness ~original ~transformed r with
      | Some w ->
          check_b "witness carries the trace" true
            (w.Safeopt_core.Witness.evidence
            = Safeopt_core.Witness.Relation_failure t)
      | None -> Alcotest.fail "no structured witness for the counterexample");
      (* the same pair under the ladder: auto escalates and agrees with
         the exhaustive verdict (here: a genuinely new behaviour) *)
      let exh =
        Validate.run_validator Validate.Exhaustive ~original ~transformed ()
      in
      let auto = Validate.run_validator Validate.Auto ~original ~transformed () in
      check_b "exhaustive rejects" false (Validate.outcome_ok exh);
      check_b "auto agrees" false (Validate.outcome_ok auto);
      check_b "auto decided by the exhaustive rung" true
        (Validate.method_tag auto = "exhaustive")
  | v ->
      Alcotest.failf "expected a counterexample, got %a" Refine.pp_verdict v

let test_atomic_escalates_not_rejects () =
  (* an RMW's written value (faa adds) can fall outside the
     literal-derived universe, so the per-thread comparison must return
     Bounded — escalating the auto ladder to exhaustive — and never a
     Counterexample for this perfectly safe E-RAR rewrite *)
  let original =
    parse "thread { r1 := faa(c, 1); r2 := x; r3 := x; print r1; }"
  in
  let transformed =
    parse "thread { r1 := faa(c, 1); r2 := x; r3 := r2; print r1; }"
  in
  let r = Refine.check ~original ~transformed () in
  (match List.assoc 0 r.Refine.threads with
  | Refine.Bounded _ -> ()
  | v ->
      Alcotest.failf "expected Bounded on the atomic thread, got %a"
        Refine.pp_thread_verdict v);
  check_b "unknown, not counterexample" true
    (match Refine.verdict r with Refine.Unknown _ -> true | _ -> false);
  let auto = Validate.run_validator Validate.Auto ~original ~transformed () in
  let exh =
    Validate.run_validator Validate.Exhaustive ~original ~transformed ()
  in
  check_b "auto accepts via escalation" true (Validate.outcome_ok auto);
  check_b "auto decided by the exhaustive rung" true
    (Validate.method_tag auto = "exhaustive");
  check_b "agrees with exhaustive" true (Validate.outcome_ok exh);
  (* identical atomic threads still take the static fast path *)
  let r_id = Refine.check ~original ~transformed:original () in
  check_b "identical atomic thread stays Identical" true
    (List.assoc 0 r_id.Refine.threads = Refine.Identical)

let test_truncation_is_unknown_not_safe () =
  (* both sides loop forever writing x: the transformed enumeration hits
     max_len, so the thread is Bounded and the verdict Unknown — a
     truncated enumeration must never certify Safe *)
  let original = parse "thread { while (r1 == 0) { x := r2; } }" in
  let transformed =
    parse "thread { while (r1 == 0) { x := r2; x := r2; } }"
  in
  let r = Refine.check ~max_len:6 ~original ~transformed () in
  check_b "bounded thread" true
    (List.exists
       (fun (_, v) -> match v with Refine.Bounded _ -> true | _ -> false)
       r.Refine.threads);
  check_b "unknown verdict" true
    (match Refine.verdict r with Refine.Unknown _ -> true | _ -> false)

(* --- differential vs the exhaustive oracle ------------------------------ *)

let rand () = Random.State.make [| 0x5afe1; 7 |]
let to_alcotest t = QCheck_alcotest.to_alcotest ~rand:(rand ()) t
let pool2 = Par.Pool.create 2

let print_case ((pass : Pass.t), p) =
  Fmt.str "pass: %s@.%s" pass.Pass.name (Generators.print_program p)

(* Every registered pass, the deliberately unsafe controls included:
   unsafe rewrites are exactly where the Counterexample/escalation arm
   of the property earns its keep. *)
let case_gen =
  QCheck2.Gen.(pair (oneofl Pipeline.registry) Generators.program)

let differential ~name ?pool () =
  to_alcotest
    (QCheck2.Test.make ~name ~count:300 ~print:print_case case_gen
       (fun ((pass : Pass.t), p) ->
         let transformed = (pass.Pass.run p).Pass.program in
         (* tight bounds keep 2x300 cases cheap; truncation soundly
            degrades Safe to Unknown, never flips a verdict *)
         let r =
           Refine.check ~max_len:6 ~max_traces:2_000 ~original:p ~transformed
             ()
         in
         let exh = Validate.validate ?pool ~original:p ~transformed () in
         (match Refine.verdict r with
         | Refine.Safe ->
             (* a Safe verdict is a soundness claim: the exhaustive
                oracle must agree *)
             if not (Validate.ok exh) then
               QCheck2.Test.fail_report
                 "refine said Safe but the exhaustive oracle rejects"
         | Refine.Counterexample (tid, t) ->
             (* negative verdicts only escalate, but the counterexample
                must still be a genuine transformed-thread trace *)
             let universe = Denote.joint_universe [ p; transformed ] in
             let ts, _ =
               Denote.thread_traces ~universe ~max_len:6 ~tid
                 (List.nth transformed.Ast.threads tid)
             in
             if not (Traceset.mem t ts) then
               QCheck2.Test.fail_report
                 "counterexample is not a transformed thread trace";
             if Option.is_none (Refine.witness ~original:p ~transformed r)
             then QCheck2.Test.fail_report "counterexample lost its witness"
         | Refine.Unknown _ -> ());
         (* the ladder invariant: auto's verdict equals exhaustive's *)
         let auto =
           Validate.run_validator ?pool ~max_len:6 ~max_traces:2_000
             Validate.Auto ~original:p ~transformed ()
         in
         Validate.outcome_ok auto = Validate.ok exh))

let () =
  Alcotest.run "refine"
    [
      ( "thread-verdicts",
        [
          Alcotest.test_case "identical threads" `Quick test_identical_threads;
          Alcotest.test_case "E-RAR refines per thread" `Quick
            test_rar_refines_per_thread;
          Alcotest.test_case "untouched thread stays identical" `Quick
            test_untouched_thread_is_identical;
          Alcotest.test_case "thread count change blocks" `Quick
            test_thread_count_blocked;
          Alcotest.test_case "volatile change blocks" `Quick
            test_volatile_change_blocked;
          Alcotest.test_case "counterexample replays as witness" `Quick
            test_counterexample_replays;
          Alcotest.test_case "atomic updates escalate, never reject" `Quick
            test_atomic_escalates_not_rejects;
          Alcotest.test_case "truncation is Unknown, never Safe" `Quick
            test_truncation_is_unknown_not_safe;
        ] );
      ( "differential",
        [
          differential ~name:"refine vs exhaustive oracle (jobs 1)" ();
          differential ~name:"refine vs exhaustive oracle (jobs 2)"
            ~pool:pool2 ();
        ] );
    ]
