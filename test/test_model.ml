(* The first-class memory-model interface (lib/model): the SC/TSO/PSO
   inclusion hierarchy and its collapse on DRF programs, checked by
   QCheck over random programs at jobs 1 and 2, plus the validator
   differential the portability matrix rests on — under a hardware
   model, [Validate.Auto]'s verdict must equal model-exhaustive
   enumeration on every randomly transformed pair. *)

open Safeopt_exec
open Safeopt_lang
open Safeopt_gen
module Model = Safeopt_model.Memory_model

let rand () = Random.State.make [| 0x5afe8; 8 |]
let to_alcotest t = QCheck_alcotest.to_alcotest ~rand:(rand ()) t

let test ?(count = 100) name gen ~print prop =
  to_alcotest (QCheck2.Test.make ~name ~count ~print gen prop)

(* --- unit: the model type itself ----------------------------------- *)

let test_of_string () =
  List.iter
    (fun (s, m) ->
      Alcotest.(check bool)
        (Printf.sprintf "of_string %S" s)
        true
        (Model.of_string s = Ok m))
    [
      ("sc", Model.Sc);
      ("tso", Model.Tso);
      ("pso", Model.Pso);
      ("SC", Model.Sc);
      (" Tso ", Model.Tso);
    ];
  Alcotest.(check bool)
    "unknown model rejected" true
    (Result.is_error (Model.of_string "arm"));
  List.iter
    (fun m ->
      Alcotest.(check bool)
        ("name round-trips for " ^ Model.name m)
        true
        (Model.of_string (Model.name m) = Ok m))
    Model.all

let test_catch_fire () =
  Alcotest.(check bool) "SC catches fire" true (Model.catch_fire Model.Sc);
  Alcotest.(check bool) "TSO does not" false (Model.catch_fire Model.Tso);
  Alcotest.(check bool) "PSO does not" false (Model.catch_fire Model.Pso)

(* The model dispatch must agree with the machines it wraps. *)
let test_dispatch_agrees () =
  List.iter
    (fun (t : Safeopt_litmus.Litmus.t) ->
      let p = Safeopt_litmus.Litmus.program t in
      Alcotest.(check bool)
        (t.Safeopt_litmus.Litmus.name ^ ": Sc = Interp")
        true
        (Behaviour.Set.equal
           (Model.behaviours Model.Sc p)
           (Interp.behaviours p));
      Alcotest.(check bool)
        (t.Safeopt_litmus.Litmus.name ^ ": Tso = Machine")
        true
        (Behaviour.Set.equal
           (Model.behaviours Model.Tso p)
           (Safeopt_tso.Machine.program_behaviours p));
      Alcotest.(check bool)
        (t.Safeopt_litmus.Litmus.name ^ ": Pso = Pso")
        true
        (Behaviour.Set.equal
           (Model.behaviours Model.Pso p)
           (Safeopt_tso.Pso.program_behaviours p)))
    [
      Safeopt_litmus.Corpus.sb;
      Safeopt_litmus.Corpus.lb;
      Safeopt_litmus.Corpus.mp_volatile;
      Safeopt_litmus.Corpus.atomic_sb_xchg;
    ]

(* --- unit: the flagship portability asymmetry ----------------------- *)

(* store-load-reorder on the lb shape: accepted under SC (Fig. 11
   R-RW, Theorem 4), rejected under TSO and PSO with the manufactured
   [1; 1] outcome as a replayable witness. *)
let test_store_load_reorder_lb () =
  let p = Safeopt_litmus.Litmus.program Safeopt_litmus.Corpus.lb in
  let p' = Safeopt_opt.Passes.reorder_load_store p in
  Alcotest.(check bool) "the pass fires on lb" false (Ast.equal_program p p');
  let outcome model =
    Safeopt_opt.Validate.run_validator ~model Safeopt_opt.Validate.Auto
      ~original:p ~transformed:p' ()
  in
  Alcotest.(check bool)
    "safe under SC" true
    (Safeopt_opt.Validate.outcome_ok (outcome Model.Sc));
  List.iter
    (fun m ->
      let o = outcome m in
      Alcotest.(check bool)
        ("unsafe under " ^ Model.name m)
        false
        (Safeopt_opt.Validate.outcome_ok o);
      match Safeopt_opt.Validate.outcome_witness ~original:p ~transformed:p' o with
      | Some w -> (
          match w.Safeopt_core.Witness.evidence with
          | Safeopt_core.Witness.New_behaviour b ->
              Alcotest.(check bool)
                ("witness behaviour replays under " ^ Model.name m)
                true
                (Model.replays m p' b && not (Model.replays m p b))
          | _ -> Alcotest.fail "expected a new-behaviour witness")
      | None -> Alcotest.fail "expected a witness")
    [ Model.Tso; Model.Pso ]

(* --- properties: the inclusion hierarchy ---------------------------- *)

let subset a b = Behaviour.Set.subset a b

(* SC <= TSO <= PSO on arbitrary programs: the weak machines only add
   behaviours (an empty-buffer execution is an SC execution, and a
   TSO buffer is a PSO buffer drained in location-merged order). *)
let inclusion_prop jobs p =
  let sc = Model.behaviours ~jobs Model.Sc p in
  let tso = Model.behaviours ~jobs Model.Tso p in
  let pso = Model.behaviours ~jobs Model.Pso p in
  subset sc tso && subset tso pso

let inclusion_j1 =
  test ~count:200 "SC <= TSO <= PSO (jobs 1)" Generators.program
    ~print:Generators.print_program (inclusion_prop 1)

let inclusion_j2 =
  test ~count:100 "SC <= TSO <= PSO (jobs 2)" Generators.program
    ~print:Generators.print_program (inclusion_prop 2)

(* On DRF programs the hierarchy collapses — the DRF guarantee: every
   buffered execution is observationally equivalent to an SC one. *)
let drf_equality_prop jobs p =
  let sc = Model.behaviours ~jobs Model.Sc p in
  Behaviour.Set.equal sc (Model.behaviours ~jobs Model.Tso p)
  && Behaviour.Set.equal sc (Model.behaviours ~jobs Model.Pso p)

let drf_equality_j1 =
  test ~count:200 "DRF collapses the hierarchy (jobs 1)"
    Generators.drf_program ~print:Generators.print_program
    (drf_equality_prop 1)

let drf_equality_j2 =
  test ~count:100 "DRF collapses the hierarchy (jobs 2)"
    Generators.drf_program ~print:Generators.print_program
    (drf_equality_prop 2)

(* --- properties: the validator differential ------------------------- *)

(* A random safe pass applied to a random program, judged under a
   hardware model: [Auto] must return exactly [Exhaustive]'s verdict —
   the ladder's weak-model escalation rules (refine only via the
   static-DRF certificate, else model-exhaustive) may never change the
   answer. *)
let transformed_pair =
  QCheck2.Gen.map2
    (fun p name ->
      let pass = Option.get (Safeopt_opt.Pipeline.find name) in
      (p, (pass.Safeopt_opt.Pass.run p).Safeopt_opt.Pass.program))
    Generators.program
    (QCheck2.Gen.oneofl Safeopt_opt.Pipeline.safe_names)

let print_pair (p, p') =
  Generators.print_program p ^ "\n--- transformed ---\n"
  ^ Generators.print_program p'

let ladder_agreement_prop model (p, p') =
  let run v =
    Safeopt_opt.Validate.outcome_ok
      (Safeopt_opt.Validate.run_validator ~model v ~original:p ~transformed:p'
         ())
  in
  run Safeopt_opt.Validate.Auto = run Safeopt_opt.Validate.Exhaustive

let ladder_agreement_tso =
  test ~count:150 "Auto = Exhaustive under TSO" transformed_pair
    ~print:print_pair
    (ladder_agreement_prop Model.Tso)

let ladder_agreement_pso =
  test ~count:150 "Auto = Exhaustive under PSO" transformed_pair
    ~print:print_pair
    (ladder_agreement_prop Model.Pso)

let () =
  Alcotest.run "model"
    [
      ( "interface",
        [
          Alcotest.test_case "of_string / name" `Quick test_of_string;
          Alcotest.test_case "racy-behaviour semantics" `Quick test_catch_fire;
          Alcotest.test_case "dispatch agrees with the machines" `Quick
            test_dispatch_agrees;
          Alcotest.test_case "store-load-reorder on lb" `Quick
            test_store_load_reorder_lb;
        ] );
      ( "inclusion",
        [ inclusion_j1; inclusion_j2; drf_equality_j1; drf_equality_j2 ] );
      ( "validator", [ ladder_agreement_tso; ladder_agreement_pso ] );
    ]
