(* drfopt — the command-line face of the safeopt library.

   Subcommands:
     run         interpret a program: behaviours + DRF verdict
     analyze     static lockset analysis: DRF certificate or race report
     drf         data-race check with a witness execution
     transform   apply a named Fig. 10/11 rule
     opt         run the optimisation pipeline and validate it
     validate    compare two programs under the DRF guarantee
     litmus      run the built-in corpus
     matrix      print the section-4 reorderability matrix
     portability the pass x memory-model portability matrix
     report      aggregate a --trace-out JSONL trace offline
                 (--profile hot spans, --flamegraph collapsed stacks)
     bench       benchmark utilities: `bench diff` compares BENCH_*.json
                 files with noise-aware thresholds (the CI perf gate)
     tso         TSO behaviours and the section-8 explanation check

   The analysis subcommands share the telemetry flags --trace-out FILE,
   --trace-format jsonl|chrome, --metrics and the live-telemetry trio
   --heartbeat MS / --heartbeat-out FILE / --progress (see [setup_obs]);
   the semantic subcommands (run, validate, optimize, litmus) share
   --model sc|tso|pso selecting the memory model whose behaviours are
   enumerated. *)

open Cmdliner
open Safeopt_lang
open Safeopt_exec

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  try Ok (Parser.parse_program (read_file path)) with
  | Parser.Error (pos, msg) ->
      Error (Printf.sprintf "%s:%d:%d: %s" path pos.Lexer.line pos.Lexer.col msg)
  | Lexer.Error (pos, msg) ->
      Error (Printf.sprintf "%s:%d:%d: %s" path pos.Lexer.line pos.Lexer.col msg)
  | Sys_error e -> Error e

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Program in the concrete syntax.")

let fuel_arg =
  Arg.(
    value & opt int 64
    & info [ "fuel" ] ~docv:"N"
        ~doc:"Per-thread action budget for programs with loops.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print exploration statistics (states visited, transitions, \
              memo hits, POR cuts, peak frontier depth, wall time) after \
              the analysis.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Run explorations across $(docv) domains (default 1 = \
              sequential; 0 = all recommended cores).  Verdicts, behaviour \
              sets and counts are identical at any job count.")

module Model = Safeopt_model.Memory_model

let model_conv =
  Arg.conv
    ( (fun s -> Result.map_error (fun e -> `Msg e) (Model.of_string s)),
      fun ppf m -> Fmt.string ppf (Model.name m) )

let model_arg =
  Arg.(
    value & opt model_conv Model.Sc
    & info [ "model" ] ~docv:"MODEL"
        ~doc:"Memory model whose behaviours are enumerated: $(b,sc) \
              (default: the interleaving semantics, racy programs catch \
              fire), $(b,tso) (one FIFO store buffer per thread with \
              store-to-load forwarding) or $(b,pso) (per-location \
              buffers).  Data-race freedom stays an SC question under \
              every model.")

let check_jobs jobs =
  if jobs < 0 then begin
    Fmt.epr "drfopt: --jobs must be non-negative@.";
    exit 2
  end;
  jobs

(* Thread one stats sink through [f]'s explorations, print it, then
   exit with [f]'s code — so a failing run still reports what it cost. *)
let with_stats enabled f =
  let stats = if enabled then Some (Explorer.create_stats ()) else None in
  let code = f stats in
  Option.iter (fun s -> Fmt.pr "%a@." Explorer.pp_stats s) stats;
  if code <> 0 then exit code

let or_die = function
  | Ok v -> v
  | Error e ->
      Fmt.epr "drfopt: %s@." e;
      exit 2

let print_behaviours bs =
  Fmt.pr "@[<v>behaviours (%d, showing maximal):@ %a@]@."
    (Behaviour.Set.cardinal bs)
    Fmt.(list ~sep:cut string)
    (Interp.behaviour_strings bs)

(* --- telemetry flags (shared by the analysis subcommands) --- *)

module Obs = Safeopt_obs

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Write a structured span/event trace of the run to $(docv) \
              (spans per exploration, pass, validation and litmus test; \
              counter samples for queue depth and throughput).  Inspect it \
              with $(b,drfopt report) or load the $(b,chrome) format in \
              Perfetto.")

let trace_format_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("jsonl", Obs.Tracer.Jsonl); ("chrome", Obs.Tracer.Chrome_trace) ])
        Obs.Tracer.Jsonl
    & info [ "trace-format" ] ~docv:"FMT"
        ~doc:"Trace file format: $(b,jsonl) (one event per line, the input \
              of $(b,drfopt report)) or $(b,chrome) (Chrome trace_event \
              JSON with one lane per domain, loadable in Perfetto or \
              chrome://tracing).")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Collect the process-global metrics registry (counters, \
              gauges, latency histograms) during the run and print its \
              summary on exit.")

let heartbeat_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "heartbeat" ] ~docv:"MS"
        ~doc:"Sample live progress every $(docv) milliseconds into a \
              versioned JSONL heartbeat file (see $(b,--heartbeat-out)): \
              each line freezes the metrics registry plus the explorer's \
              in-flight progress (states, states/sec, peak frontier, \
              steals, lock waits).  Snapshots are monotone and the final \
              line equals the end-of-run metrics.  Implies metrics \
              collection.")

let heartbeat_out_arg =
  Arg.(
    value
    & opt string "heartbeat.jsonl"
    & info [ "heartbeat-out" ] ~docv:"FILE"
        ~doc:"Where $(b,--heartbeat) appends its JSONL snapshots (default \
              $(b,heartbeat.jsonl)); each line is flushed as written, so a \
              crashed run keeps its last heartbeat.")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:"Rewrite a live one-line progress summary on stderr while the \
              run is in flight (states, states/sec, frontier).  Uses the \
              $(b,--heartbeat) interval when given, 500 ms otherwise; \
              implies metrics collection.")

(* Subcommands terminate via [exit] from several places, so the
   finaliser that writes the trace file and prints the metrics summary
   is registered with [at_exit]; it runs before the stdlib's formatter
   flushes (registered earlier, hence later in at_exit order). *)
(* The heartbeat's progress view: the explorer's live tracker (registry
   + in-flight deltas, consistent and monotone) plus the arena gauge. *)
let live_progress_fields () =
  let s = Explorer.live_progress () in
  let arena =
    match Obs.Metrics.(find_gauge global "par.arena_words") with
    | Some g -> g.Obs.Metrics.g_last
    | None -> 0.
  in
  Obs.Json.
    [
      ("states", Int s.Explorer.states);
      ("edges", Int s.Explorer.edges);
      ("memo_hits", Int s.Explorer.memo_hits);
      ("por_cuts", Int s.Explorer.por_cuts);
      ("peak_frontier", Int s.Explorer.peak_frontier);
      ("steals", Int s.Explorer.steals);
      ("lock_waits", Int s.Explorer.lock_waits);
      ("domains", Int s.Explorer.domains);
      ("arena_words", Float arena);
    ]

let setup_obs trace_out format metrics heartbeat heartbeat_out progress =
  let sampling = heartbeat <> None || progress in
  let live = metrics || trace_out <> None || sampling in
  if live then begin
    Obs.Metrics.reset_global ();
    Obs.Metrics.set_enabled true
  end;
  Option.iter
    (fun path -> Obs.Tracer.start (Obs.Tracer.File { path; format }))
    trace_out;
  if sampling then
    Obs.Snapshot.start
      ?path:(Option.map (fun _ -> heartbeat_out) heartbeat)
      ~echo:progress
      ~interval_ms:(Option.value ~default:500 heartbeat)
      live_progress_fields;
  if live then
    at_exit (fun () ->
        (* the sampler first: its final snapshot must equal the
           end-of-run registry, and it must not observe the teardown *)
        Obs.Snapshot.stop ();
        if Obs.Tracer.enabled () then
          (* final value of every metric as trailing counter samples, so
             the trace file is self-contained *)
          List.iter
            (fun n ->
              match Obs.Metrics.(find_counter global n) with
              | Some v -> Obs.Tracer.counter n (float_of_int v)
              | None -> (
                  match Obs.Metrics.(find_gauge global n) with
                  | Some g -> Obs.Tracer.counter n g.Obs.Metrics.g_last
                  | None -> ()))
            Obs.Metrics.(names global);
        ignore (Obs.Tracer.stop () : Obs.Event.t list);
        if metrics then Fmt.pr "%a@." Obs.Metrics.pp Obs.Metrics.global)

let obs_term =
  Term.(
    const setup_obs $ trace_out_arg $ trace_format_arg $ metrics_arg
    $ heartbeat_arg $ heartbeat_out_arg $ progress_arg)

(* --- run --- *)

let run_cmd =
  let run () file fuel stats jobs model =
    let jobs = check_jobs jobs in
    let p = or_die (load file) in
    Fmt.pr "%a@.@." Pp.program p;
    with_stats stats (fun stats ->
        if not (Model.equal model Model.Sc) then
          Fmt.pr "memory model: %s@." (Model.name model);
        print_behaviours (Model.behaviours ~fuel ?stats ~jobs model p);
        Fmt.pr "data race free: %b@." (Interp.is_drf ~fuel ?stats ~jobs p);
        0)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Enumerate behaviours under $(b,--model) (default SC) and check \
             race freedom")
    Term.(
      const run $ obs_term $ file_arg $ fuel_arg $ stats_arg $ jobs_arg
      $ model_arg)

(* --- drf --- *)

let drf_cmd =
  let run () file fuel =
    let p = or_die (load file) in
    match Interp.find_race ~fuel p with
    | None -> Fmt.pr "data race free@."
    | Some i ->
        Fmt.pr "@[<v>RACY; witness execution (last two actions conflict):@ %a@]@."
          Interleaving.pp i;
        exit 1
  in
  Cmd.v
    (Cmd.info "drf" ~doc:"Check data race freedom, with witness")
    Term.(const run $ obs_term $ file_arg $ fuel_arg)

(* --- analyze --- *)

let analyze_cmd =
  let run () file fuel stats jobs =
    let jobs = check_jobs jobs in
    let p = or_die (load file) in
    let open Safeopt_analysis in
    Fmt.pr "may-access summary:@.";
    List.iter (fun s -> Fmt.pr "  %a@." Lockset.pp_summary s) (Lockset.summarise p);
    let report = Static_race.analyse p in
    Fmt.pr "per-access locksets:@.";
    List.iter (fun a -> Fmt.pr "  %a@." Lockset.pp_access a) report.accesses;
    match report.races with
    | [] -> Fmt.pr "verdict: DRF (certified statically, no enumeration)@."
    | races ->
        Fmt.pr "potential races (%d):@." (List.length races);
        List.iter
          (fun pr -> Fmt.pr "%a@." (Static_race.pp_race_with_windows p) pr)
          races;
        if not stats then begin
          Fmt.pr "verdict: POTENTIAL RACES (needs exhaustive enumeration)@.";
          exit 1
        end
        else
          (* With --stats, settle the static "unknown" by running the
             exhaustive enumeration the verdict calls for. *)
          with_stats stats (fun stats ->
              match Interp.find_race ~fuel ?stats ~jobs p with
              | Some i ->
                  Fmt.pr
                    "@[<v>verdict: RACY (exhaustive enumeration); witness:@ \
                     %a@]@."
                    Interleaving.pp i;
                  1
              | None ->
                  Fmt.pr
                    "verdict: DRF (exhaustive enumeration; the static \
                     analysis was imprecise)@.";
                  0)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Static DRF certification: per-access locksets and the race \
             pairs the lockset analysis cannot rule out.  With $(b,--stats), \
             unresolved potential races are settled by the exhaustive \
             enumeration and its exploration statistics are printed")
    Term.(const run $ obs_term $ file_arg $ fuel_arg $ stats_arg $ jobs_arg)

(* --- transform --- *)

let transform_cmd =
  let rule_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "rule"; "r" ] ~docv:"RULE"
          ~doc:"Rule name (E-RAR, E-RAW, E-WAR, E-WBW, E-IR, R-RR, R-WW, \
                R-WR, R-RW, R-WL, R-RL, R-UW, R-UR, R-XR, R-XW, I-IR).")
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Print every single-step result instead of the first.")
  in
  let run file rule all =
    let p = or_die (load file) in
    if all then
      match Safeopt_opt.Rule.by_name rule with
      | None -> or_die (Error (Printf.sprintf "unknown rule %S" rule))
      | Some r ->
          List.iteri
            (fun i s ->
              Fmt.pr "--- result %d ---@.%a@." i Pp.program
                s.Safeopt_opt.Transform.after)
            (Safeopt_opt.Transform.program_rewrites [ r ] p)
    else
      match Safeopt_opt.Transform.apply_named rule p with
      | Ok p' -> Fmt.pr "%a@." Pp.program p'
      | Error e -> or_die (Error e)
  in
  Cmd.v
    (Cmd.info "transform" ~doc:"Apply a Fig. 10/11 rule")
    Term.(const run $ file_arg $ rule_arg $ all_arg)

(* --- opt --- *)

let opt_cmd =
  let passes_arg =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "passes" ] ~docv:"P1,P2,..."
          ~doc:"Comma-separated pass names (constprop, copyprop, \
                redundancy, dead-moves, dead-loads, fold-branches, \
                normalise, unroll1, unroll2, read-intro, \
                cross-acquire-elim, roach-motel); default pipeline if \
                omitted.")
  in
  let run () file fuel passes =
    let p = or_die (load file) in
    let p' =
      match passes with
      | None -> Safeopt_opt.Passes.optimise p
      | Some names -> or_die (Safeopt_opt.Passes.run_pipeline names p)
    in
    Fmt.pr "--- optimised ---@.%a@.@." Pp.program p';
    let report =
      Safeopt_opt.Validate.validate ~fuel ~original:p ~transformed:p' ()
    in
    Fmt.pr "%a@." Safeopt_opt.Validate.pp_report report;
    if not (Safeopt_opt.Validate.ok report) then exit 1
  in
  Cmd.v
    (Cmd.info "opt"
       ~doc:"Run an optimisation pipeline and validate it against the DRF \
             guarantee")
    Term.(const run $ obs_term $ file_arg $ fuel_arg $ passes_arg)

(* --- the validator ladder flag (optimize + validate) --- *)

let validator_arg =
  let mode_conv =
    Arg.enum
      [
        ("static", Safeopt_opt.Validate.Static);
        ("refine", Safeopt_opt.Validate.Refinement);
        ("exhaustive", Safeopt_opt.Validate.Exhaustive);
        ("auto", Safeopt_opt.Validate.Auto);
      ]
  in
  Arg.(
    value
    & opt mode_conv Safeopt_opt.Validate.Auto
    & info [ "validator" ] ~docv:"MODE"
        ~doc:"How to decide the DRF guarantee for a program pair: \
              $(b,static) (syntactic equality only), $(b,refine) \
              (thread-local refinement — per-thread traceset matching, no \
              interleaving enumeration), $(b,exhaustive) (full \
              interleaving enumeration) or $(b,auto) (default: climb the \
              ladder and stop at the first rung that decides; refine \
              counterexamples escalate rather than reject, so the verdict \
              always equals $(b,exhaustive)'s).")

(* --- optimize (pass-manager pipeline) --- *)

let optimize_cmd =
  let pipeline_arg =
    Arg.(
      value
      & opt string "constprop;copyprop;cse*;dead-moves;dse;normalise"
      & info [ "pipeline" ] ~docv:"SPEC"
          ~doc:"Semicolon-separated pass names, each optionally starred to \
                iterate to a fixpoint, e.g. 'cse;dse;load-hoist*'. Aliases: \
                cse=redundancy, dse=dead-stores, load-hoist=read-intro, \
                dce=dead-moves.")
  in
  let validate_each_arg =
    Arg.(
      value & flag
      & info [ "validate-each" ]
          ~doc:"Differentially validate every pass's output against its \
                input under $(b,--validator) (default auto: syntactic \
                equality, then thread-local refinement, then exhaustive \
                enumeration); stop at the first failing pass with a \
                counterexample witness.")
  in
  let trace_arg =
    Arg.(
      value & flag
      & info [ "trace-passes" ]
          ~doc:"Print one block per executed pass: rewrite sites \
                (provenance), validation verdict, exploration states and \
                validation time.")
  in
  let list_arg =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"List the registered passes and exit.")
  in
  let opt_file_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"Program in the concrete syntax (omit with $(b,--list)).")
  in
  let run () file fuel pipeline validate_each trace list_passes stats jobs
      validator model =
    let jobs = check_jobs jobs in
    let open Safeopt_opt in
    if list_passes then (
      List.iter (fun p -> Fmt.pr "%a@." Pass.pp p) Pipeline.registry;
      exit 0);
    let file =
      match file with
      | Some f -> f
      | None ->
          Fmt.epr "drfopt: FILE required (or use --list)@.";
          exit 2
    in
    let p = or_die (load file) in
    let spec = or_die (Pipeline.parse pipeline) in
    with_stats stats (fun stats ->
        let o =
          Pipeline.run ~fuel ~validate_each ~jobs ~validator ~model spec p
        in
        (* the pipeline keeps one explorer record per executed pass;
           fold them into the sink so --stats reports the whole run *)
        Option.iter
          (fun sink ->
            List.iter
              (fun ps ->
                Explorer.merge_stats ~into:sink ps.Pipeline.ps_explorer)
              o.Pipeline.steps)
          stats;
        if trace then Fmt.pr "%a" Pipeline.pp_trace o;
        Fmt.pr "--- optimised ---@.%a@." Pp.program o.final;
        let sites =
          List.fold_left
            (fun n ps -> n + List.length ps.Pipeline.ps_sites)
            0 o.Pipeline.steps
        in
        Fmt.pr "%d rewrite site%s across %d pass%s@." sites
          (if sites = 1 then "" else "s")
          (List.length o.Pipeline.steps)
          (if List.length o.Pipeline.steps = 1 then "" else "es");
        match o.Pipeline.failure with
        | Some (name, w) ->
            (* the trace rendering already shows the witness *)
            if not trace then
              Fmt.pr "@[<v>REJECTED at pass %s:@ %a@]@." name
                (Safeopt_core.Witness.pp
                   (Fmt.of_to_string Pp.program_to_string))
                w
            else Fmt.pr "REJECTED at pass %s@." name;
            1
        | None -> 0)
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Run a pass-manager pipeline with per-pass provenance and \
             differential validation under $(b,--model) (default sc) — a \
             pipeline accepted under SC may be rejected under tso/pso")
    Term.(
      const run $ obs_term $ opt_file_arg $ fuel_arg $ pipeline_arg
      $ validate_each_arg $ trace_arg $ list_arg $ stats_arg $ jobs_arg
      $ validator_arg $ model_arg)

(* --- validate --- *)

let validate_cmd =
  let transformed_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"TRANSFORMED" ~doc:"Transformed program.")
  in
  let relation_arg =
    let rel_conv =
      Arg.enum
        [
          ("none", Safeopt_opt.Validate.Unchecked);
          ("elim", Safeopt_opt.Validate.Elimination);
          ("reorder", Safeopt_opt.Validate.Reordering);
          ("elim-reorder", Safeopt_opt.Validate.Elimination_then_reordering);
        ]
    in
    Arg.(
      value
      & opt rel_conv Safeopt_opt.Validate.Unchecked
      & info [ "relation" ]
          ~doc:"Also check the semantic traceset relation on bounded \
                denotations: $(b,elim), $(b,reorder) or $(b,elim-reorder).")
  in
  let max_len_arg =
    Arg.(
      value & opt int 10
      & info [ "max-len" ]
          ~doc:"Trace length bound for the refine rung's per-thread \
                enumerations and for the $(b,--relation) check.")
  in
  let run () orig_file trans_file relation validator max_len fuel stats jobs
      model =
    let jobs = check_jobs jobs in
    let original = or_die (load orig_file) in
    let transformed = or_die (load trans_file) in
    let open Safeopt_opt in
    if relation <> Validate.Unchecked && not (Model.equal model Model.Sc) then begin
      Fmt.epr
        "drfopt: --relation argues over SC tracesets; it cannot be combined \
         with --model %s@."
        (Model.name model);
      exit 2
    end;
    with_stats stats (fun stats ->
        match relation with
        | Validate.Unchecked ->
            let o =
              Validate.run_validator ~fuel ?stats ~jobs ~max_len ~model
                validator ~original ~transformed ()
            in
            Fmt.pr "%a@." Validate.pp_outcome o;
            Fmt.pr "DRF guarantee: %s@."
              (if Validate.outcome_ok o then "HOLDS"
               else if Validate.method_tag o = "inconclusive" then "UNDECIDED"
               else "VIOLATED");
            if Validate.outcome_ok o then 0 else 1
        | r ->
            let report =
              Validate.validate_semantic ~fuel ?stats ~jobs ~max_len
                ~relation:r ~original ~transformed ()
            in
            Fmt.pr "%a@." Validate.pp_report report;
            Fmt.pr "DRF guarantee: %s@."
              (if Validate.ok report then "HOLDS" else "VIOLATED");
            if Validate.ok report then 0 else 1)
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Check a transformation against the DRF guarantee (Theorems 1-4). \
             Without $(b,--relation), the pair is decided under \
             $(b,--validator) (default auto) and $(b,--model) (default sc; \
             under tso/pso the criterion is plain behaviour inclusion and \
             the ladder escalates to model-exhaustive enumeration); with \
             $(b,--relation), the claimed semantic traceset relation is \
             checked by the legacy SC exhaustive path")
    Term.(
      const run $ obs_term $ file_arg $ transformed_arg $ relation_arg
      $ validator_arg $ max_len_arg $ fuel_arg $ stats_arg $ jobs_arg
      $ model_arg)

(* --- denote --- *)

let denote_cmd =
  let max_len_arg =
    Arg.(
      value & opt int 8
      & info [ "max-len" ] ~docv:"N" ~doc:"Trace length bound.")
  in
  let run file max_len =
    let p = or_die (load file) in
    let universe = Denote.universe p in
    let ts = Denote.traceset ~universe ~max_len p in
    Fmt.pr "value universe: %a@."
      Fmt.(brackets (list ~sep:comma int))
      universe;
    Fmt.pr "traces (length <= %d): %d; maximal:@." max_len
      (Safeopt_trace.Traceset.cardinal ts);
    List.iter
      (fun t -> Fmt.pr "  %a@." Safeopt_trace.Trace.pp t)
      (Safeopt_trace.Traceset.maximal ts)
  in
  Cmd.v
    (Cmd.info "denote"
       ~doc:"Print the bounded traceset denotation [[P]] of a program")
    Term.(const run $ file_arg $ max_len_arg)

(* --- litmus --- *)

let litmus_cmd =
  let name_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Run a single test by name.")
  in
  let filter_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "filter" ] ~docv:"SUBSTR"
          ~doc:"Run only the tests whose name contains $(docv).")
  in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  let run () name filter stats jobs model =
    let jobs = check_jobs jobs in
    let tests =
      match (name, filter) with
      | Some n, _ -> (
          match Safeopt_litmus.Corpus.by_name n with
          | Some t -> [ t ]
          | None ->
              Fmt.epr "unknown litmus test %S@." n;
              exit 2)
      | None, Some sub -> (
          match
            List.filter
              (fun (t : Safeopt_litmus.Litmus.t) ->
                contains t.Safeopt_litmus.Litmus.name sub)
              Safeopt_litmus.Corpus.all
          with
          | [] ->
              Fmt.epr "no litmus test name contains %S@." sub;
              exit 2
          | ts -> ts)
      | None, None -> Safeopt_litmus.Corpus.all
    in
    with_stats stats (fun stats ->
        if not (Model.equal model Model.Sc) then
          Fmt.pr
            "memory model: %s (expectations are SC expectations; failures \
             below are the model's relaxations)@."
            (Model.name model);
        let outcomes =
          Safeopt_litmus.Litmus.check_all ?stats ~jobs ~model tests
        in
        List.iter
          (fun o -> Fmt.pr "%a@." Safeopt_litmus.Litmus.pp_outcome o)
          outcomes;
        if List.for_all Safeopt_litmus.Litmus.passed outcomes then 0 else 1)
  in
  Cmd.v
    (Cmd.info "litmus"
       ~doc:"Run the built-in litmus corpus, sharded across $(b,--jobs) \
             domains.  A positional $(b,NAME) runs one test; \
             $(b,--filter) runs the subset whose names contain a \
             substring (e.g. $(b,--filter atomic) for the lock-free \
             pack).  With $(b,--stats), print the exploration statistics \
             accumulated across the whole corpus.  With $(b,--model tso) \
             or $(b,pso), behaviours are enumerated on the weak machine \
             while the expectations stay SC, surfacing each test's \
             relaxations as failures")
    Term.(
      const run $ obs_term $ name_arg $ filter_arg $ stats_arg $ jobs_arg
      $ model_arg)

(* --- portability --- *)

let portability_cmd =
  let pass_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "pass" ] ~docv:"NAME"
          ~doc:"Sweep a single registered pass instead of the whole \
                registry.")
  in
  let no_witnesses_arg =
    Arg.(
      value & flag
      & info [ "no-witnesses" ]
          ~doc:"Print the table only, without the per-cell \
                counterexamples.")
  in
  let run () fuel stats jobs pass no_witnesses =
    let jobs = check_jobs jobs in
    let open Safeopt_litmus in
    let passes =
      match pass with
      | None -> Safeopt_opt.Pipeline.registry
      | Some name -> (
          match Safeopt_opt.Pipeline.find name with
          | Some p -> [ p ]
          | None ->
              Fmt.epr "drfopt: unknown pass %S@." name;
              exit 2)
    in
    with_stats stats (fun stats ->
        let m = Portability.sweep ~fuel ?stats ~jobs ~passes () in
        Fmt.pr "%a" Portability.pp m;
        if not no_witnesses then Fmt.pr "%a" Portability.pp_witnesses m;
        0)
  in
  Cmd.v
    (Cmd.info "portability"
       ~doc:"Sweep every registered pass over the litmus corpus under each \
             memory model (sc, tso, pso) and print the portability matrix: \
             per cell, $(b,safe) (every changed corpus program validates), \
             $(b,UNSAFE) (with the first failing test and a replayed \
             counterexample) or $(b,inert) (the pass rewrote no corpus \
             program).  The flagship asymmetry: store-load-reorder is safe \
             under SC (Fig. 11 R-RW, Theorem 4) but unsafe under tso/pso")
    Term.(
      const run $ obs_term $ fuel_arg $ stats_arg $ jobs_arg $ pass_arg
      $ no_witnesses_arg)

(* --- eliminable --- *)

let eliminable_cmd =
  let trace_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE"
          ~doc:"A trace in the paper's notation, e.g. \
                \"S(0); W[x=1]; R[y=*]; R[x=1]; X(1)\".")
  in
  let volatile_arg =
    Arg.(
      value & opt (list string) []
      & info [ "volatile" ] ~docv:"LOCS" ~doc:"Volatile locations.")
  in
  let run trace vols =
    let w =
      try Safeopt_trace.Syntax.parse_wildcard trace
      with Safeopt_trace.Syntax.Error (pos, m) ->
        or_die (Error (Printf.sprintf "at offset %d: %s" pos m))
    in
    let vol = Safeopt_trace.Location.Volatile.of_list vols in
    Fmt.pr "%a@." Safeopt_trace.Wildcard.pp w;
    List.iteri
      (fun i e ->
        match Safeopt_core.Eliminable.classify vol w i with
        | Some k ->
            Fmt.pr "  %2d %-10s eliminable: %a%s@." i
              (Fmt.str "%a" Safeopt_trace.Wildcard.pp_elt e)
              Safeopt_core.Eliminable.pp_kind k
              (if Safeopt_core.Eliminable.properly_eliminable vol w i then ""
               else "  (not composable: last-action clause)")
        | None ->
            Fmt.pr "  %2d %-10s -@." i
              (Fmt.str "%a" Safeopt_trace.Wildcard.pp_elt e))
      w
  in
  Cmd.v
    (Cmd.info "eliminable"
       ~doc:"Classify each index of a trace per Definition 1")
    Term.(const run $ trace_arg $ volatile_arg)

(* --- matrix --- *)

let matrix_cmd =
  let run () = Fmt.pr "%a@?" Safeopt_core.Reorder.pp_matrix () in
  Cmd.v
    (Cmd.info "matrix" ~doc:"Print the section-4 reorderability matrix")
    Term.(const run $ const ())

(* --- deadlock --- *)

let deadlock_cmd =
  let run () file fuel =
    let p = or_die (load file) in
    match Interp.find_deadlock ~fuel p with
    | None -> Fmt.pr "no deadlock reachable@."
    | Some i ->
        Fmt.pr "@[<v>DEADLOCK after:@ %a@]@." Interleaving.pp i;
        exit 1
  in
  Cmd.v
    (Cmd.info "deadlock" ~doc:"Search for a reachable deadlock")
    Term.(const run $ obs_term $ file_arg $ fuel_arg)

(* --- chain --- *)

let chain_cmd =
  let files_arg =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILES" ~doc:"Chain of programs, original first.")
  in
  let run () files fuel =
    let programs = List.map (fun f -> or_die (load f)) files in
    let report = Safeopt_opt.Validate.validate_chain ~fuel programs in
    Fmt.pr "%a@." Safeopt_opt.Validate.pp_chain_report report;
    Fmt.pr "chain DRF guarantee: %s@."
      (if Safeopt_opt.Validate.chain_ok report then "HOLDS" else "VIOLATED");
    if not (Safeopt_opt.Validate.chain_ok report) then exit 1
  in
  Cmd.v
    (Cmd.info "chain"
       ~doc:"Validate a chain of transformations (the paper's composition \
             result)")
    Term.(const run $ obs_term $ files_arg $ fuel_arg)

(* --- robust --- *)

let robust_cmd =
  let run () file fuel =
    let p = or_die (load file) in
    let p', promoted = Safeopt_tso.Robustness.enforce ~fuel p in
    (match promoted with
    | [] -> Fmt.pr "already data race free; no fences needed@."
    | ls ->
        Fmt.pr "promoted to volatile: %a@."
          Fmt.(list ~sep:(any ", ") string)
          ls;
        Fmt.pr "--- robust program ---@.%a@." Pp.program p');
    Fmt.pr "TSO-robust: %b@." (Safeopt_tso.Robustness.is_robust ~fuel p')
  in
  Cmd.v
    (Cmd.info "robust"
       ~doc:"Infer the volatile annotations (fences) that make the program \
             data race free, hence SC on TSO")
    Term.(const run $ obs_term $ file_arg $ fuel_arg)

(* --- tso --- *)

let tso_cmd =
  let run () file fuel =
    let p = or_die (load file) in
    let tso = Safeopt_tso.Machine.program_behaviours ~fuel p in
    let weak = Safeopt_tso.Machine.weak_behaviours ~fuel p in
    Fmt.pr "TSO behaviours:@.";
    print_behaviours tso;
    Fmt.pr "weak (TSO minus SC): %a@." Behaviour.Set.pp weak;
    let _, _, explained = Safeopt_tso.Machine.explained_by_transformations ~fuel p in
    Fmt.pr "explained by R-WR + E-RAW transformations: %b@." explained
  in
  Cmd.v
    (Cmd.info "tso"
       ~doc:"Enumerate store-buffer (TSO) behaviours and check the \
             section-8 explanation")
    Term.(const run $ obs_term $ file_arg $ fuel_arg)

let pso_cmd =
  let run () file fuel =
    let p = or_die (load file) in
    Fmt.pr "PSO behaviours:@.";
    print_behaviours (Safeopt_tso.Pso.program_behaviours ~fuel p);
    Fmt.pr "weak (PSO minus SC):  %a@." Behaviour.Set.pp
      (Safeopt_tso.Pso.weak_behaviours ~fuel p);
    Fmt.pr "weak (PSO minus TSO): %a@." Behaviour.Set.pp
      (Safeopt_tso.Pso.weak_beyond_tso ~fuel p);
    let _, _, explained =
      Safeopt_tso.Pso.explained_by_transformations ~fuel p
    in
    Fmt.pr "explained by R-WW + R-WR + E-RAW transformations: %b@." explained
  in
  Cmd.v
    (Cmd.info "pso"
       ~doc:"Enumerate partial-store-order behaviours (per-location store \
             buffers)")
    Term.(const run $ obs_term $ file_arg $ fuel_arg)

(* --- report --- *)

let report_cmd =
  let trace_file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE"
          ~doc:"A JSONL trace written by $(b,--trace-out) (the default \
                $(b,jsonl) format; $(b,chrome) traces are for Perfetto, \
                not for this command).")
  in
  let profile_arg =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:"Append the span-tree profile: the top-$(b,--top) hot spans \
                by self time (wall time minus time inside child spans), \
                with deterministic ordering (self time descending, name as \
                tie-break).")
  in
  let flamegraph_arg =
    Arg.(
      value & flag
      & info [ "flamegraph" ]
          ~doc:"Print collapsed stacks only (flamegraph.pl's folded \
                format, one 'root;child;leaf µs' line per distinct stack, \
                weighted by self time): pipe into flamegraph.pl or drop \
                the file on speedscope.app.")
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"K"
          ~doc:"How many hot spans $(b,--profile) shows (default 10).")
  in
  let run file profile flamegraph top =
    let events =
      match Obs.Report.read_file file with
      | Ok evs -> evs
      | Error e -> or_die (Error e)
    in
    if flamegraph then Fmt.pr "%a@?" Obs.Profile.pp_collapsed events
    else begin
      Fmt.pr "%a@." Obs.Report.pp (Obs.Report.aggregate events);
      if profile then Fmt.pr "%a@?" (Obs.Profile.pp_top ~k:top) events
    end
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Aggregate a $(b,--trace-out) JSONL trace offline: per-phase \
             wall-time totals with self time, a per-pass table \
             (iterations, rewrite sites, validation verdicts) and final \
             counter values; $(b,--profile) adds the hot-span table and \
             $(b,--flamegraph) emits collapsed stacks for flamegraph.pl \
             or speedscope")
    Term.(const run $ trace_file_arg $ profile_arg $ flamegraph_arg $ top_arg)

(* --- bench --- *)

let bench_cmd =
  let diff_cmd =
    let old_arg =
      Arg.(
        required
        & pos 0 (some file) None
        & info [] ~docv:"OLD" ~doc:"Baseline BENCH_*.json (committed).")
    in
    let new_arg =
      Arg.(
        required
        & pos 1 (some file) None
        & info [] ~docv:"NEW" ~doc:"Fresh BENCH_*.json from this run.")
    in
    let threshold_arg =
      Arg.(
        value & opt float Obs.Bench_diff.default_threshold
        & info [ "threshold" ] ~docv:"FRAC"
            ~doc:"Relative delta in the bad direction that counts as a \
                  regression (default 0.25 = 25%).")
    in
    let min_wall_arg =
      Arg.(
        value & opt float Obs.Bench_diff.default_min_wall
        & info [ "min-wall" ] ~docv:"S"
            ~doc:"Noise floor: numeric points whose measured wall is under \
                  $(docv) seconds on both sides are skipped (default \
                  0.05).")
    in
    let run old_path new_path threshold min_wall =
      match
        Obs.Bench_diff.diff_files ~threshold ~min_wall old_path new_path
      with
      | Error e -> or_die (Error e)
      | Ok t ->
          Fmt.pr "%a@?" Obs.Bench_diff.pp t;
          if Obs.Bench_diff.regressed t then exit 1
    in
    Cmd.v
      (Cmd.info "diff"
         ~doc:"Compare two BENCH_*.json files with noise-aware thresholds: \
               rates (units_per_sec, reps-independent) compare higher-is-\
               better, walls lower-is-better, boolean claims must not flip \
               true→false; points under $(b,--min-wall) on both sides are \
               skipped.  Exits non-zero on any regression — the CI perf \
               gate.")
      Term.(const run $ old_arg $ new_arg $ threshold_arg $ min_wall_arg)
  in
  Cmd.group
    (Cmd.info "bench"
       ~doc:"Benchmark utilities (the benchmarks themselves live in \
             bench/main.exe)")
    [ diff_cmd ]

let main =
  Cmd.group
    (Cmd.info "drfopt" ~version:"1.0.0"
       ~doc:"Trace semantics and DRF-safe optimisation toolkit (Sevcik, PLDI \
             2011)")
    [
      run_cmd;
      drf_cmd;
      analyze_cmd;
      transform_cmd;
      opt_cmd;
      optimize_cmd;
      validate_cmd;
      deadlock_cmd;
      denote_cmd;
      eliminable_cmd;
      chain_cmd;
      robust_cmd;
      litmus_cmd;
      matrix_cmd;
      portability_cmd;
      report_cmd;
      bench_cmd;
      tso_cmd;
      pso_cmd;
    ]

let () = exit (Cmd.eval main)
