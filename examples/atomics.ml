(* Atomic read-modify-writes end to end: the ticket lock.

   cas/faa/xchg parse to a single [Ast.Atomic] statement, execute as
   one [U[l:r→w]] action (read and write with nothing in between), and
   synchronise like a volatile access — acquire and release at once.
   That is exactly what a ticket lock needs: [faa next] hands out
   tickets, the spin on [serving] is a volatile read, and the release
   [faa serving] publishes the critical section.

   Run with: dune exec examples/atomics.exe *)

open Safeopt

let source =
  {|
volatile serving;
thread {
  r1 := faa(next, 1);
  r2 := serving;
  while (r2 != r1) r2 := serving;
  x := 1;
  r3 := x;
  print r3;
  r4 := faa(serving, 1);
}
thread {
  r5 := faa(next, 1);
  r6 := serving;
  while (r6 != r5) r6 := serving;
  x := 2;
  r7 := x;
  print r7;
  r8 := faa(serving, 1);
}
|}

let () =
  let p = Parser.parse_program source in
  Fmt.pr "--- the ticket lock ---@.%a@." Pp.program p;

  (* Each faa returns the old counter value, so the two threads draw
     distinct tickets and the plain accesses to x never race: the DRF
     check needs no lock and no volatile annotation on x. *)
  Fmt.pr "data race free: %b@." (Interp.is_drf p);
  Fmt.pr "SC behaviours:  %s@."
    (String.concat " | " (Interp.behaviour_strings (Interp.behaviours p)));

  (* Mutual exclusion as behaviours: both critical sections run, in
     either order, but never interleaved — no [1;1] or [2;2]. *)
  let b = Interp.behaviours p in
  assert (Behaviour.Set.mem [ 1; 2 ] b);
  assert (Behaviour.Set.mem [ 2; 1 ] b);
  assert (not (Behaviour.Set.mem [ 1; 1 ] b));
  assert (not (Behaviour.Set.mem [ 2; 2 ] b));
  Fmt.pr "mutual exclusion holds: both orders, never interleaved@.";

  (* Under TSO/PSO the RMWs flush the store buffers (x86 LOCK prefix),
     so the lock works unfenced on relaxed hardware too. *)
  Fmt.pr "TSO-weak behaviours: %s@."
    (let w = Tso.weak_behaviours p in
     if Behaviour.Set.is_empty w then "none"
     else Fmt.str "%a" Behaviour.Set.pp w);

  (* The optimiser keeps its hands off the atomics — every pass is
     conservative around [Atomic] — and the auto validator ladder
     escalates the atomic threads from the refine rung (whose value
     universe is not closed under updates) to the exhaustive one. *)
  let spec =
    match Pipeline.parse "constprop;copyprop;cse*;dead-moves;dse;normalise"
    with
    | Ok s -> s
    | Error e -> failwith e
  in
  let q = (Pipeline.run spec p).Pipeline.final in
  let o = Validate.run_validator Validate.Auto ~original:p ~transformed:q () in
  Fmt.pr "optimised and validated: %s (decided by %s)@."
    (if Validate.outcome_ok o then "ok" else "REJECTED")
    (Validate.method_tag o);
  assert (Validate.outcome_ok o);
  Fmt.pr "@.ticket lock: checked.@."
